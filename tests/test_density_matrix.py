"""Unit tests for the density-matrix simulator."""

import numpy as np
import pytest

from repro.circuits import Hamiltonian, QuantumCircuit
from repro.exceptions import SimulationError
from repro.noise import GateErrorSpec, NoiseModel, ibmq_toronto
from repro.sim import DensityMatrixSimulator, StatevectorSimulator
from repro.sim.density_matrix import MAX_DM_QUBITS, channel_superop, zero_density
from repro.sim.kraus import _embed_apply


def random_circuit(n, depth, seed):
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(n)
    for _ in range(depth):
        k = rng.integers(7)
        if k == 0:
            qc.h(int(rng.integers(n)))
        elif k == 1:
            qc.rz(float(rng.normal()), int(rng.integers(n)))
        elif k == 2:
            a, b = rng.choice(n, 2, replace=False)
            qc.cx(int(a), int(b))
        elif k == 3:
            qc.sx(int(rng.integers(n)))
        elif k == 4:
            a, b = rng.choice(n, 2, replace=False)
            qc.rzz(float(rng.normal()), int(a), int(b))
        elif k == 5:
            a, b = rng.choice(n, 2, replace=False)
            qc.cz(int(a), int(b))
        else:
            qc.ry(float(rng.normal()), int(rng.integers(n)))
    return qc


def test_noiseless_matches_statevector():
    qc = random_circuit(4, 30, seed=2)
    rho = DensityMatrixSimulator().evolve(qc)
    sv = StatevectorSimulator().run(qc).statevector
    assert np.allclose(rho, np.outer(sv, sv.conj()), atol=1e-10)


def test_noisy_matches_bruteforce_kraus():
    nm = ibmq_toronto().noise_model()
    qc = random_circuit(3, 25, seed=6)
    rho_fast = DensityMatrixSimulator(nm).evolve(qc)
    rho = zero_density(3)
    for inst in qc:
        if inst.is_gate:
            rho = _embed_apply(rho, inst.matrix(), inst.qubits, 3)
        for channel, qubits in nm.channels_for(inst):
            out = np.zeros_like(rho)
            for k in channel.operators:
                out += _embed_apply(rho, k, qubits, 3)
            rho = out
    assert np.allclose(rho_fast, rho, atol=1e-11)


def test_evolution_preserves_trace_and_positivity():
    nm = ibmq_toronto().noise_model()
    qc = random_circuit(3, 40, seed=9)
    rho = DensityMatrixSimulator(nm).evolve(qc)
    assert np.trace(rho).real == pytest.approx(1.0)
    eigs = np.linalg.eigvalsh(rho)
    assert (eigs > -1e-10).all()


def test_qubit_limit_guard():
    qc = QuantumCircuit(MAX_DM_QUBITS + 1)
    with pytest.raises(SimulationError):
        DensityMatrixSimulator().evolve(qc)


def test_reset_unsupported():
    qc = QuantumCircuit(1)
    qc.reset(0)
    with pytest.raises(SimulationError):
        DensityMatrixSimulator().evolve(qc)


def test_readout_error_shifts_probabilities():
    nm = NoiseModel(name="ro", readout_error=0.1)
    qc = QuantumCircuit(1)  # stays in |0>
    probs = DensityMatrixSimulator(nm).run(qc).probabilities()
    assert probs[1] == pytest.approx(0.1)
    clean = DensityMatrixSimulator(nm).run(qc, apply_readout_error=False)
    assert clean.probabilities()[1] == pytest.approx(0.0)


def test_expectation_diagonal_includes_readout():
    nm = NoiseModel(name="ro", readout_error=0.1)
    qc = QuantumCircuit(1)
    h = Hamiltonian.from_labels({"Z": 1.0})
    e = DensityMatrixSimulator(nm).expectation(qc, h)
    assert e == pytest.approx(0.8)  # (1-2*0.1)
    e_clean = DensityMatrixSimulator(nm).expectation(qc, h, include_readout_error=False)
    assert e_clean == pytest.approx(1.0)


def test_expectation_offdiagonal_grouping_noise_free():
    qc = QuantumCircuit(2)
    qc.h(0)
    qc.cx(0, 1)
    h = Hamiltonian.from_labels({"XX": 1.0, "ZZ": 1.0, "YY": -1.0})
    e = DensityMatrixSimulator().expectation(qc, h)
    assert e == pytest.approx(3.0)


def test_shots_sampled_from_corrupted_distribution():
    nm = NoiseModel(name="ro", readout_error=0.5)
    qc = QuantumCircuit(1)
    result = DensityMatrixSimulator(nm, seed=0).run(qc, shots=4000)
    assert abs(result.counts.get(1, 0) - 2000) < 200


def test_delay_applies_relaxation():
    nm = NoiseModel(
        name="relax",
        spec_1q=GateErrorSpec(0.0, 0.0),  # instantaneous X: isolate the delay
        spec_2q=GateErrorSpec(0.0, 300e-9),
        t1=1e-6,
        t2=1e-6,
    )
    qc = QuantumCircuit(1)
    qc.x(0)
    qc.delay(1e-6, 0)
    rho = DensityMatrixSimulator(nm).evolve(qc)
    assert rho[1, 1].real == pytest.approx(np.exp(-1.0), abs=1e-6)


def test_channel_superop_roundtrip():
    from repro.noise.channels import depolarizing_channel

    ch = depolarizing_channel(0.2, 1)
    s = channel_superop(ch.operators)
    rho = np.array([[0.7, 0.2], [0.2, 0.3]], dtype=complex)
    direct = ch.apply_to_density(rho, [0], 1)
    via_superop = (s @ rho.reshape(-1)).reshape(2, 2)
    assert np.allclose(direct, via_superop, atol=1e-12)


def test_superop_cache_reused_across_calls():
    nm = ibmq_toronto().noise_model()
    sim = DensityMatrixSimulator(nm)
    qc = random_circuit(3, 10, seed=1)
    sim.evolve(qc)
    cached = len(sim._gate_superops)
    sim.evolve(qc)
    assert len(sim._gate_superops) == cached


class PerQubitNoiseModel(NoiseModel):
    """Heterogeneous model: depolarizing strength depends on the qubit hit.

    Regression guard for the superoperator cache key — a name-only key
    would serve qubit 0's noise to every other qubit.
    """

    def __init__(self, rates):
        super().__init__(name="per_qubit")
        self.rates = dict(rates)

    def channels_for(self, inst):
        from repro.noise.channels import depolarizing_channel

        if not inst.is_gate or inst.name == "rz":
            return []
        return [
            (depolarizing_channel(self.rates[q], 1), (q,))
            for q in inst.qubits
            if self.rates.get(q, 0.0) > 0.0
        ]


def test_heterogeneous_noise_not_conflated_by_superop_cache():
    nm = PerQubitNoiseModel({0: 0.3, 1: 0.0})
    qc = QuantumCircuit(2)
    qc.x(0)  # noisy: primes the cache for gate "x"
    qc.x(1)  # noiseless on qubit 1 — must NOT reuse qubit 0's superop
    rho = DensityMatrixSimulator(nm).evolve(qc)
    # Qubit 1 saw no noise: its marginal must be exactly |1><1|.
    marg1 = np.real(rho[0b10, 0b10] + rho[0b11, 0b11])
    assert marg1 == pytest.approx(1.0, abs=1e-12)
    # Qubit 0 is depolarized: its |1| population drops below 1.
    marg0 = np.real(rho[0b01, 0b01] + rho[0b11, 0b11])
    assert marg0 < 0.9


def test_heterogeneous_noise_matches_bruteforce_kraus():
    nm = PerQubitNoiseModel({0: 0.2, 1: 0.05, 2: 0.0})
    qc = random_circuit(3, 20, seed=9)
    rho_fast = DensityMatrixSimulator(nm).evolve(qc)
    rho = zero_density(3)
    for inst in qc:
        if inst.is_gate:
            rho = _embed_apply(rho, inst.matrix(), inst.qubits, 3)
        for channel, qubits in nm.channels_for(inst):
            out = np.zeros_like(rho)
            for k in channel.operators:
                out += _embed_apply(rho, k, qubits, 3)
            rho = out
    assert np.allclose(rho_fast, rho, atol=1e-11)
