"""Unit tests for the standard noise channels."""

import numpy as np
import pytest

from repro.exceptions import NoiseModelError
from repro.noise import (
    amplitude_damping_channel,
    bit_flip_channel,
    coherent_overrotation_channel,
    depolarizing_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)
from repro.noise.channels import DepolarizingChannel, two_qubit_tensor_channel
from repro.sim.kraus import KrausChannel
from tests.conftest import random_density


def test_depolarizing_fully_mixes_at_p1():
    ch = depolarizing_channel(1.0, 1)
    rho = np.array([[1, 0], [0, 0]], dtype=complex)
    out = ch.apply_to_density(rho, [0], 1)
    # p=1 uniform non-identity Pauli leaves 1/3 mix of X,Y,Z images.
    assert np.trace(out) == pytest.approx(1.0)
    assert out[1, 1].real > 0.5


def test_depolarizing_zero_is_identity():
    rho = random_density(1, seed=0)
    out = depolarizing_channel(0.0, 1).apply_to_density(rho, [0], 1)
    assert np.allclose(out, rho)


def test_depolarizing_bad_probability():
    with pytest.raises(NoiseModelError):
        depolarizing_channel(1.5)
    with pytest.raises(NoiseModelError):
        depolarizing_channel(0.1, 3)


def test_depolarizing_fast_path_matches_kraus_1q_and_2q():
    rho = random_density(3, seed=7)
    for p, qubits in [(0.1, (0,)), (0.2, (2,)), (0.15, (0, 2)), (0.3, (2, 1))]:
        ch = DepolarizingChannel(p, len(qubits))
        generic = KrausChannel(ch.operators)
        fast = ch.apply_to_density(rho, qubits, 3)
        slow = generic.apply_to_density(rho, qubits, 3)
        assert np.allclose(fast, slow, atol=1e-11), (p, qubits)


def test_bit_flip_statistics():
    rho = np.array([[1, 0], [0, 0]], dtype=complex)
    out = bit_flip_channel(0.25).apply_to_density(rho, [0], 1)
    assert out[1, 1].real == pytest.approx(0.25)


def test_phase_flip_kills_coherence():
    rho = 0.5 * np.ones((2, 2), dtype=complex)
    out = phase_flip_channel(0.5).apply_to_density(rho, [0], 1)
    assert abs(out[0, 1]) == pytest.approx(0.0)
    assert out[0, 0].real == pytest.approx(0.5)


def test_pauli_channel_probability_validation():
    with pytest.raises(NoiseModelError):
        pauli_channel(0.5, 0.5, 0.5)
    pauli_channel(0.1, 0.1, 0.1)  # ok


def test_amplitude_damping_fixed_point_is_ground():
    rho = np.array([[0, 0], [0, 1]], dtype=complex)
    out = amplitude_damping_channel(1.0).apply_to_density(rho, [0], 1)
    assert out[0, 0].real == pytest.approx(1.0)


def test_amplitude_damping_partial():
    rho = np.array([[0, 0], [0, 1]], dtype=complex)
    out = amplitude_damping_channel(0.3).apply_to_density(rho, [0], 1)
    assert out[1, 1].real == pytest.approx(0.7)


def test_phase_damping_preserves_populations():
    rho = random_density(1, seed=4)
    out = phase_damping_channel(0.6).apply_to_density(rho, [0], 1)
    assert out[0, 0] == pytest.approx(rho[0, 0])
    assert abs(out[0, 1]) < abs(rho[0, 1])


def test_thermal_relaxation_limits():
    # Zero duration: identity.
    ch = thermal_relaxation_channel(1e-4, 0.8e-4, 0.0)
    rho = random_density(1, seed=5)
    assert np.allclose(ch.apply_to_density(rho, [0], 1), rho)
    # Long duration: everything decays to |0>.
    ch = thermal_relaxation_channel(1e-6, 0.8e-6, 1.0)
    out = ch.apply_to_density(rho, [0], 1)
    assert out[0, 0].real == pytest.approx(1.0, abs=1e-6)


def test_thermal_relaxation_t1_population_decay():
    t1, dur = 100e-6, 50e-6
    ch = thermal_relaxation_channel(t1, t1, dur)
    rho = np.array([[0, 0], [0, 1]], dtype=complex)
    out = ch.apply_to_density(rho, [0], 1)
    assert out[1, 1].real == pytest.approx(np.exp(-dur / t1), abs=1e-9)


def test_thermal_relaxation_validation():
    with pytest.raises(NoiseModelError):
        thermal_relaxation_channel(-1.0, 1.0, 1.0)
    with pytest.raises(NoiseModelError):
        thermal_relaxation_channel(1.0, 3.0, 1.0)  # T2 > 2 T1
    with pytest.raises(NoiseModelError):
        thermal_relaxation_channel(1.0, 1.0, -0.1)


def test_coherent_overrotation_is_unitary_channel():
    ch = coherent_overrotation_channel(0.1, "z")
    assert ch.is_unitary
    with pytest.raises(NoiseModelError):
        coherent_overrotation_channel(0.1, "w")


def test_two_qubit_tensor_channel():
    a = bit_flip_channel(0.5)
    b = KrausChannel([np.eye(2)])
    ch = two_qubit_tensor_channel(a, b)
    rho = np.zeros((4, 4), dtype=complex)
    rho[0, 0] = 1.0
    out = ch.apply_to_density(rho, [0, 1], 2)
    # Qubit 0 flips with p=0.5, qubit 1 untouched.
    assert out[0b01, 0b01].real == pytest.approx(0.5)
    with pytest.raises(NoiseModelError):
        two_qubit_tensor_channel(ch, b)
