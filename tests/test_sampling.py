"""Unit and property tests for sampling and readout-error application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.sim.sampling import (
    apply_readout_error_counts,
    apply_readout_error_probabilities,
    confusion_matrix_1q,
    expected_value_of_bits,
    marginal_counts,
    sample_counts,
)


def test_sample_counts_total():
    rng = np.random.default_rng(0)
    counts = sample_counts(np.array([0.5, 0.5]), 1000, rng)
    assert sum(counts.values()) == 1000


def test_sample_counts_deterministic_distribution():
    rng = np.random.default_rng(0)
    counts = sample_counts(np.array([0.0, 1.0]), 100, rng)
    assert counts == {1: 100}


def test_sample_counts_rejects_bad_input():
    rng = np.random.default_rng(0)
    with pytest.raises(SimulationError):
        sample_counts(np.array([0.5, 0.5]), 0, rng)
    with pytest.raises(SimulationError):
        sample_counts(np.zeros(4), 10, rng)


def test_sample_counts_normalizes():
    rng = np.random.default_rng(0)
    counts = sample_counts(np.array([2.0, 2.0]), 2000, rng)
    assert abs(counts.get(0, 0) - 1000) < 120


def test_confusion_matrix_columns_stochastic():
    m = confusion_matrix_1q(0.02, 0.05)
    assert np.allclose(m.sum(axis=0), [1.0, 1.0])
    with pytest.raises(SimulationError):
        confusion_matrix_1q(-0.1, 0.0)


def test_readout_probabilities_single_qubit():
    probs = np.array([1.0, 0.0])
    out = apply_readout_error_probabilities(probs, [(0.1, 0.2)])
    assert out[0] == pytest.approx(0.9)
    assert out[1] == pytest.approx(0.1)


def test_readout_probabilities_two_qubits_independent():
    probs = np.zeros(4)
    probs[0b11] = 1.0
    out = apply_readout_error_probabilities(probs, [(0.0, 0.5), (0.0, 0.0)])
    # Qubit 0 flips 1->0 with p=0.5; qubit 1 never flips.
    assert out[0b11] == pytest.approx(0.5)
    assert out[0b10] == pytest.approx(0.5)


@given(st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_readout_probabilities_preserve_normalization(seed):
    rng = np.random.default_rng(seed)
    p = rng.random(8)
    p /= p.sum()
    flips = [(rng.random() * 0.2, rng.random() * 0.2) for _ in range(3)]
    out = apply_readout_error_probabilities(p, flips)
    assert out.sum() == pytest.approx(1.0)
    assert (out >= -1e-12).all()


def test_readout_counts_statistics():
    rng = np.random.default_rng(5)
    counts = {0b0: 20000}
    noisy = apply_readout_error_counts(counts, [(0.1, 0.0)], rng)
    flipped = noisy.get(0b1, 0)
    assert abs(flipped - 2000) < 300
    assert sum(noisy.values()) == 20000


def test_readout_counts_matches_probabilities_on_average():
    rng = np.random.default_rng(11)
    probs = np.zeros(4)
    probs[0b01] = 1.0
    flips = [(0.05, 0.1), (0.2, 0.02)]
    exact = apply_readout_error_probabilities(probs, flips)
    noisy = apply_readout_error_counts({0b01: 50000}, flips, rng)
    for bits in range(4):
        empirical = noisy.get(bits, 0) / 50000
        assert empirical == pytest.approx(exact[bits], abs=0.01)


def test_marginal_counts():
    counts = {0b110: 4, 0b010: 6}
    marg = marginal_counts(counts, [1])
    assert marg == {1: 10}
    # New bit i = old qubits[i]: bit0 = old q2, bit1 = old q1.
    marg2 = marginal_counts(counts, [2, 1])
    assert marg2 == {0b11: 4, 0b10: 6}


def test_expected_value_of_bits():
    counts = {0b01: 50, 0b10: 50}
    p = expected_value_of_bits(counts, 2)
    assert p[0] == pytest.approx(0.5)
    assert p[1] == pytest.approx(0.5)
    with pytest.raises(SimulationError):
        expected_value_of_bits({}, 2)
