"""Unit and property tests for sampling and readout-error application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.sim.sampling import (
    apply_readout_error_counts,
    apply_readout_error_outcomes,
    apply_readout_error_probabilities,
    confusion_matrix_1q,
    counts_expectation_diagonal,
    counts_from_outcomes,
    counts_to_arrays,
    empirical_probabilities,
    empirical_probabilities_batch,
    expected_value_of_bits,
    marginal_counts,
    sample_counts,
    sample_counts_batch,
)


def test_sample_counts_total():
    rng = np.random.default_rng(0)
    counts = sample_counts(np.array([0.5, 0.5]), 1000, rng)
    assert sum(counts.values()) == 1000


def test_sample_counts_deterministic_distribution():
    rng = np.random.default_rng(0)
    counts = sample_counts(np.array([0.0, 1.0]), 100, rng)
    assert counts == {1: 100}


def test_sample_counts_rejects_bad_input():
    rng = np.random.default_rng(0)
    with pytest.raises(SimulationError):
        sample_counts(np.array([0.5, 0.5]), 0, rng)
    with pytest.raises(SimulationError):
        sample_counts(np.zeros(4), 10, rng)


def test_sample_counts_normalizes():
    rng = np.random.default_rng(0)
    counts = sample_counts(np.array([2.0, 2.0]), 2000, rng)
    assert abs(counts.get(0, 0) - 1000) < 120


def test_confusion_matrix_columns_stochastic():
    m = confusion_matrix_1q(0.02, 0.05)
    assert np.allclose(m.sum(axis=0), [1.0, 1.0])
    with pytest.raises(SimulationError):
        confusion_matrix_1q(-0.1, 0.0)


def test_readout_probabilities_single_qubit():
    probs = np.array([1.0, 0.0])
    out = apply_readout_error_probabilities(probs, [(0.1, 0.2)])
    assert out[0] == pytest.approx(0.9)
    assert out[1] == pytest.approx(0.1)


def test_readout_probabilities_two_qubits_independent():
    probs = np.zeros(4)
    probs[0b11] = 1.0
    out = apply_readout_error_probabilities(probs, [(0.0, 0.5), (0.0, 0.0)])
    # Qubit 0 flips 1->0 with p=0.5; qubit 1 never flips.
    assert out[0b11] == pytest.approx(0.5)
    assert out[0b10] == pytest.approx(0.5)


@given(st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_readout_probabilities_preserve_normalization(seed):
    rng = np.random.default_rng(seed)
    p = rng.random(8)
    p /= p.sum()
    flips = [(rng.random() * 0.2, rng.random() * 0.2) for _ in range(3)]
    out = apply_readout_error_probabilities(p, flips)
    assert out.sum() == pytest.approx(1.0)
    assert (out >= -1e-12).all()


def test_readout_counts_statistics():
    rng = np.random.default_rng(5)
    counts = {0b0: 20000}
    noisy = apply_readout_error_counts(counts, [(0.1, 0.0)], rng)
    flipped = noisy.get(0b1, 0)
    assert abs(flipped - 2000) < 300
    assert sum(noisy.values()) == 20000


def test_readout_counts_matches_probabilities_on_average():
    rng = np.random.default_rng(11)
    probs = np.zeros(4)
    probs[0b01] = 1.0
    flips = [(0.05, 0.1), (0.2, 0.02)]
    exact = apply_readout_error_probabilities(probs, flips)
    noisy = apply_readout_error_counts({0b01: 50000}, flips, rng)
    for bits in range(4):
        empirical = noisy.get(bits, 0) / 50000
        assert empirical == pytest.approx(exact[bits], abs=0.01)


def test_marginal_counts():
    counts = {0b110: 4, 0b010: 6}
    marg = marginal_counts(counts, [1])
    assert marg == {1: 10}
    # New bit i = old qubits[i]: bit0 = old q2, bit1 = old q1.
    marg2 = marginal_counts(counts, [2, 1])
    assert marg2 == {0b11: 4, 0b10: 6}


def test_expected_value_of_bits():
    counts = {0b01: 50, 0b10: 50}
    p = expected_value_of_bits(counts, 2)
    assert p[0] == pytest.approx(0.5)
    assert p[1] == pytest.approx(0.5)
    with pytest.raises(SimulationError):
        expected_value_of_bits({}, 2)


# -- vectorized batch / flat-array helpers ------------------------------------


def test_counts_arrays_roundtrip():
    counts = {5: 3, 0: 2, 9: 7}
    keys, vals = counts_to_arrays(counts)
    assert dict(zip(keys.tolist(), vals.tolist())) == counts
    outcomes = np.repeat(keys, vals)
    assert counts_from_outcomes(outcomes) == counts
    assert marginal_counts({}, [0]) == {}


def test_sample_counts_batch_preserves_totals_and_allocation():
    rng = np.random.default_rng(2)
    probs = np.tile(np.array([0.25, 0.75]), (4, 1))
    counts = sample_counts_batch(probs, 100, rng)
    assert sum(counts.values()) == 400
    # Per-row allocation, including zero-shot rows.
    counts = sample_counts_batch(probs, np.array([10, 0, 5, 0]), rng)
    assert sum(counts.values()) == 15
    with pytest.raises(SimulationError):
        sample_counts_batch(probs, 0, rng)
    with pytest.raises(SimulationError):
        sample_counts_batch(np.zeros((2, 2)), 10, rng)


def test_sample_counts_batch_matches_per_row_statistics():
    rng = np.random.default_rng(3)
    probs = np.array([[1.0, 0.0], [0.0, 1.0]])
    counts = sample_counts_batch(probs, np.array([30, 70]), rng)
    assert counts == {0: 30, 1: 70}


def test_empirical_probabilities_sum_to_one():
    rng = np.random.default_rng(4)
    p = np.array([0.1, 0.2, 0.3, 0.4])
    emp = empirical_probabilities(p, 1000, rng)
    assert emp.sum() == pytest.approx(1.0)
    batch = empirical_probabilities_batch(np.tile(p, (3, 1)), 500, rng)
    assert batch.shape == (3, 4)
    assert np.allclose(batch.sum(axis=1), 1.0)
    # Deterministic distribution survives sampling exactly.
    assert np.allclose(
        empirical_probabilities_batch(
            np.array([[0.0, 1.0]]), 50, rng
        ),
        [[0.0, 1.0]],
    )


def test_apply_readout_error_outcomes_flat_equivalence():
    rng = np.random.default_rng(6)
    outcomes = np.zeros(40000, dtype=np.int64)
    flipped = apply_readout_error_outcomes(outcomes, [(0.25, 0.0)], rng)
    assert abs((flipped == 1).sum() - 10000) < 400
    # p10 = p01 = 0 leaves everything untouched.
    assert (apply_readout_error_outcomes(outcomes, [(0.0, 0.0)], rng) == 0).all()
    assert apply_readout_error_counts({}, [(0.1, 0.1)], rng) == {}


def test_counts_expectation_diagonal_matches_dense_dot():
    counts = {0: 10, 3: 30, 2: 60}
    diag = np.array([1.0, -1.0, 2.0, 0.5])
    dense = np.zeros(4)
    for k, c in counts.items():
        dense[k] = c / 100
    assert counts_expectation_diagonal(counts, diag) == pytest.approx(
        float(np.dot(dense, diag))
    )
    with pytest.raises(SimulationError):
        counts_expectation_diagonal({}, diag)
