"""Unit tests for the ``repro.obs`` telemetry subsystem."""

import io
import json
import logging

import numpy as np
import pytest

from repro import obs
from repro.cloud import (
    LeastBusyPolicy,
    QueueSimulator,
    generate_workload,
    hypothetical_fleet,
    run_sweep,
    standard_policies,
)
from repro.exceptions import SchedulingError, TelemetryError
from repro.obs.metrics import DEFAULT_EDGES, NOOP, Histogram, MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim.density_matrix import DensityMatrixSimulator


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with telemetry off and empty.

    ``clear()`` (not just ``reset()``) so instrument *names* registered by
    one test never leak into another's snapshot.
    """
    obs.disable()
    obs.registry().clear()
    obs.tracer().reset()
    yield
    obs.disable()
    obs.registry().clear()
    obs.tracer().reset()


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2.5)
        reg.gauge("g").set(7)
        reg.gauge("g").set(3.0)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 3.5
        assert snap["gauges"]["g"] == 3.0

    def test_histogram_edge_buckets(self):
        # le-semantics: a value equal to an edge lands in that edge's
        # bucket; values beyond the last edge go to the overflow slot.
        h = Histogram("h", edges=(1.0, 10.0))
        for v in (0.2, 1.0, 10.5):
            h.observe(v)
        assert list(h.counts) == [2, 0, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(11.7)
        assert h.mean == pytest.approx(11.7 / 3)

    def test_histogram_observe_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 20.0, size=500)
        scalar = Histogram("s", edges=(1.0, 5.0, 10.0))
        vector = Histogram("v", edges=(1.0, 5.0, 10.0))
        for v in values:
            scalar.observe(float(v))
        vector.observe_many(values)
        assert list(scalar.counts) == list(vector.counts)
        assert scalar.sum == pytest.approx(vector.sum)

    def test_histogram_bad_edges(self):
        with pytest.raises(TelemetryError):
            Histogram("h", edges=(1.0, 1.0))
        with pytest.raises(TelemetryError):
            Histogram("h", edges=())

    def test_histogram_reregistration_edge_mismatch(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1.0, 2.0))
        assert reg.histogram("h", edges=(1.0, 2.0)) is reg.histogram("h")
        with pytest.raises(TelemetryError):
            reg.histogram("h", edges=(1.0, 3.0))

    def test_default_edges_cover_microseconds_to_days(self):
        assert DEFAULT_EDGES[0] <= 1e-6
        assert DEFAULT_EDGES[-1] >= 1e5

    def test_reset_keeps_instruments(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(5)
        reg.reset()
        assert reg.counter("c") is c
        assert c.value == 0

    def test_snapshot_is_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc()
        reg.histogram("h").observe(1.0)
        assert reg.to_json() == reg.to_json()
        assert list(reg.snapshot()["counters"]) == ["a", "z"]

    def test_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for reg in (a, b):
            reg.counter("c").inc(2)
            reg.gauge("g").set(1.0)
            reg.histogram("h", edges=(1.0, 10.0)).observe(0.5)
        b.gauge("g").set(9.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 4
        assert snap["gauges"]["g"] == 9.0  # gauges overwrite
        assert snap["histograms"]["h"]["counts"] == [2, 0, 0]
        assert snap["histograms"]["h"]["count"] == 2

    def test_merge_edge_mismatch(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("h", edges=(1.0, 2.0))
        b.histogram("h", edges=(1.0, 3.0))
        with pytest.raises(TelemetryError):
            a.merge(b.snapshot())

    def test_noop_accepts_full_surface(self):
        NOOP.inc()
        NOOP.inc(3)
        NOOP.set(1.0)
        NOOP.observe(2.0)
        NOOP.observe_many(np.arange(3.0))
        assert NOOP.value == 0.0


# ---------------------------------------------------------------------------
# Global state / no-op path
# ---------------------------------------------------------------------------


class TestGlobalState:
    def test_disabled_returns_noop(self):
        assert obs.counter("x") is NOOP
        assert obs.gauge("x") is NOOP
        assert obs.histogram("x") is NOOP
        assert len(obs.registry()) == 0

    def test_disabled_span_records_nothing(self):
        with obs.span("nothing"):
            pass
        assert obs.tracer().events == []

    def test_enable_disable(self):
        obs.enable()
        assert obs.enabled()
        obs.counter("x").inc()
        assert obs.registry().snapshot()["counters"]["x"] == 1
        obs.disable()
        assert not obs.enabled()
        # Instruments survive disable; writes become no-ops.
        assert obs.counter("x") is NOOP
        assert obs.registry().snapshot()["counters"]["x"] == 1

    def test_metrics_only(self):
        obs.enable(metrics=True, tracing=False)
        obs.counter("c").inc()
        with obs.span("s"):
            pass
        assert obs.registry().snapshot()["counters"]["c"] == 1
        assert obs.tracer().events == []

    def test_configure_logging(self):
        stream = io.StringIO()
        handler = obs.configure_logging(logging.DEBUG, stream=stream)
        try:
            logging.getLogger("repro.test_obs").debug("hello %d", 7)
        finally:
            logging.getLogger("repro").removeHandler(handler)
        assert "hello 7" in stream.getvalue()
        assert "repro.test_obs" in stream.getvalue()


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_nesting_depth(self):
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        with tracer.span("outer"):
            assert tracer.current_depth == 1
            with tracer.span("inner"):
                assert tracer.current_depth == 2
            assert tracer.current_depth == 1
        assert tracer.current_depth == 0
        names = [e["name"] for e in tracer.events if e["ph"] == "X"]
        # Children complete (and are recorded) before their parents.
        assert names == ["inner", "outer"]

    def test_deterministic_export_under_fixed_clock(self):
        def run():
            ticks = iter(range(100))
            tracer = Tracer(clock=lambda: float(next(ticks)))
            with tracer.span("a", args={"k": 1}):
                tracer.instant("marker")
            tracer.counter("depth", {"value": 2.0}, timestamp=5.0)
            return tracer.to_jsonl()

        first, second = run(), run()
        assert first == second
        events = json.loads(first)
        assert {e["ph"] for e in events} == {"X", "i", "C"}

    def test_export_is_valid_json_array(self, tmp_path):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.instant("only")
        path = tmp_path / "trace.json"
        tracer.export(path)
        events = json.loads(path.read_text())
        assert len(events) == 1 and events[0]["name"] == "only"
        # One event per line between the brackets (JSONL-friendly).
        assert path.read_text().count("\n") == len(events) + 2

    def test_empty_export(self):
        assert Tracer().to_jsonl() == "[\n]\n"

    def test_max_events_drops(self):
        tracer = Tracer(clock=lambda: 0.0, max_events=2)
        for i in range(5):
            tracer.instant(f"e{i}")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_injected_clock_via_enable(self):
        ticks = iter(range(100))
        obs.enable(clock=lambda: float(next(ticks)))
        with obs.span("fixed"):
            pass
        (event,) = [e for e in obs.tracer().events if e["ph"] == "X"]
        assert event["ts"] == 0.0 and event["dur"] == 1_000_000.0


# ---------------------------------------------------------------------------
# Queue simulator telemetry
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sim_result():
    workload = generate_workload(num_jobs=400, vqa_ratio=0.5, seed=11)
    fleet = hypothetical_fleet(4, (0.3, 0.9))
    return QueueSimulator(fleet, LeastBusyPolicy(), seed=11).run(workload)


class TestQueueTelemetry:
    def test_run_schedule_unchanged_by_telemetry(self):
        workload = generate_workload(num_jobs=200, vqa_ratio=0.5, seed=5)

        def key():
            sim = QueueSimulator(
                hypothetical_fleet(3, (0.3, 0.9)), LeastBusyPolicy(), seed=5
            )
            return sim.run(workload).records.schedule_key()

        baseline = key()
        obs.enable()
        assert np.array_equal(key(), baseline)

    def test_wait_histogram_accounts_every_execution(self, sim_result):
        hist = sim_result.wait_time_histogram()
        assert hist.count == sim_result.total_executions
        per_device = sim_result.wait_times_by_device()
        assert sum(len(w) for w in per_device.values()) == hist.count
        total = sum(float(w.sum()) for w in per_device.values())
        assert hist.sum == pytest.approx(total)

    def test_wait_histogram_unknown_device(self, sim_result):
        with pytest.raises(SchedulingError):
            sim_result.wait_time_histogram("no_such_device")

    def test_device_wait_stats(self, sim_result):
        stats = sim_result.device_wait_stats()
        assert set(stats) == {d.name for d in sim_result.devices}
        for s in stats.values():
            assert 0.0 <= s["utilization"] <= 1.0
            assert s["max_wait"] >= s["p50_wait"] >= 0.0

    def test_queue_depth_timeline(self, sim_result):
        times, depth = sim_result.queue_depth_timeline()
        assert len(times) == len(depth)
        assert np.all(np.diff(times) >= 0)
        assert depth.min() >= 0 and depth[-1] == 0
        assert depth.max() == sim_result.engine_stats()["max_queue_depth"]

    def test_engine_stats_invariants(self, sim_result):
        stats = sim_result.engine_stats()
        n = sim_result.total_executions
        assert stats["executions"] == n
        assert stats["events"] == 2 * n
        assert (
            stats["queued_executions"] + stats["direct_starts"] == n
        )

    def test_metrics_published_on_enabled_run(self):
        obs.enable(metrics=True, tracing=False)
        workload = generate_workload(num_jobs=150, vqa_ratio=0.5, seed=2)
        result = QueueSimulator(
            hypothetical_fleet(3, (0.3, 0.9)), LeastBusyPolicy(), seed=2
        ).run(workload)
        snap = obs.registry().snapshot()
        assert snap["counters"]["cloud.queue.executions"] == (
            result.total_executions
        )
        for device in result.devices:
            assert f"cloud.wait_seconds.{device.name}" in snap["histograms"]
            assert f"cloud.utilization.{device.name}" in snap["gauges"]

    def test_trace_export_has_fleet_timeline(self, sim_result, tmp_path):
        path = tmp_path / "trace.json"
        count = sim_result.export_chrome_trace(path)
        events = json.loads(path.read_text())
        assert len(events) == count
        execs = [e for e in events if e["ph"] == "X" and e["pid"] == 1]
        assert len(execs) == sim_result.total_executions
        assert any(e["ph"] == "C" for e in events)
        names = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in names)

    def test_device_summary_mentions_every_device(self, sim_result):
        text = sim_result.device_summary()
        for d in sim_result.devices:
            assert d.name in text


# ---------------------------------------------------------------------------
# Cross-process merge via run_sweep
# ---------------------------------------------------------------------------


class TestSweepMerge:
    def test_pooled_sweep_merges_worker_metrics(self):
        obs.enable(metrics=True, tracing=True)
        policies = standard_policies()[:2]
        sweep = run_sweep(
            policies, [0.5], [1, 2], num_jobs=60,
            fleet_kwargs={"num_devices": 3}, max_workers=2,
        )
        snap = obs.registry().snapshot()
        assert snap["counters"]["cloud.sweep.cells"] == 4
        executions = sum(
            r.total_executions for r in sweep.cells.values()
        )
        assert snap["counters"]["cloud.queue.executions"] == executions
        assert any(
            k.startswith("cloud.wait_seconds.") for k in snap["histograms"]
        )
        assert 0.0 < snap["gauges"]["cloud.sweep.worker_utilization"] <= 1.0
        pids = {e["pid"] for e in obs.tracer().events}
        assert 2 in pids  # worker-cell spans on the sweep-worker track

    def test_serial_sweep_publishes_directly(self):
        obs.enable(metrics=True, tracing=False)
        run_sweep(
            standard_policies()[:1], [0.5], [1], num_jobs=60,
            fleet_kwargs={"num_devices": 3}, parallel=False,
        )
        snap = obs.registry().snapshot()
        assert snap["counters"]["cloud.queue.executions"] > 0
        # Serial path never goes through the worker merge.
        assert "cloud.sweep.cells" not in snap["counters"]


# ---------------------------------------------------------------------------
# Simulator instrumentation
# ---------------------------------------------------------------------------


class TestSimTelemetry:
    def test_lowering_count_shim_and_counter(self):
        from repro.circuits import QuantumCircuit

        obs.enable(metrics=True, tracing=False)
        sim = DensityMatrixSimulator()
        circuit = QuantumCircuit(2, name="bell")
        circuit.h(0)
        circuit.cx(0, 1)
        before = sim.lowering_count
        sim.run(circuit)
        assert sim.lowering_count == before + 1
        assert obs.registry().snapshot()["counters"]["sim.dm.lowerings"] == 1
        # The shim stays assignable (older tests reset it to zero).
        sim.lowering_count = 0
        assert sim.lowering_count == 0

    def test_plan_cache_hit_miss_counters(self):
        from repro.circuits import Parameter, QuantumCircuit

        obs.enable(metrics=True, tracing=False)
        sim = DensityMatrixSimulator()
        theta = Parameter("theta")
        circuit = QuantumCircuit(1, name="rx")
        circuit.rx(theta, 0)
        sim.run(circuit.bind({theta: 0.1}))
        sim.run(circuit.bind({theta: 0.2}))
        counters = obs.registry().snapshot()["counters"]
        hits = counters.get("sim.dm.structural_cache.hits", 0)
        misses = counters.get("sim.dm.structural_cache.misses", 0)
        assert misses >= 1 and hits >= 1

    def test_fusion_stats_recorded(self):
        from repro.circuits import QuantumCircuit
        from repro.sim.compile import CompiledCircuit

        obs.enable(metrics=True, tracing=False)
        circuit = QuantumCircuit(2, name="fused")
        circuit.h(0)
        circuit.rz(0.3, 0)
        circuit.cx(0, 1)
        CompiledCircuit(circuit)
        snap = obs.registry().snapshot()
        assert snap["counters"]["sim.compile.lowerings"] == 1
        assert snap["counters"]["sim.compile.source_gates"] == 3
        assert snap["counters"]["sim.compile.kernels"] >= 1
        assert "sim.compile.gates_per_kernel" in snap["histograms"]


# ---------------------------------------------------------------------------
# VQA instrumentation
# ---------------------------------------------------------------------------


class TestVQATelemetry:
    def test_optimizer_step_counters(self):
        from repro.vqa.optimizers import SPSA

        obs.enable(metrics=True, tracing=False)
        opt = SPSA(a=0.1, seed=0)
        result = opt.minimize(
            lambda x: float(np.sum(x**2)), [0.5, -0.3], maxiter=5,
        )
        counters = obs.registry().snapshot()["counters"]
        assert counters["vqa.opt_steps"] == 5
        assert counters["vqa.opt_fev"] == result.nfev - 1  # final eval extra
