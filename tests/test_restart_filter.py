"""Unit and property tests for restart filtering and cluster detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RestartFilter, detect_clusters
from repro.exceptions import SchedulingError


def test_validation():
    with pytest.raises(SchedulingError):
        RestartFilter(cluster_width=0.0)
    with pytest.raises(SchedulingError):
        RestartFilter(min_keep=0)
    with pytest.raises(SchedulingError):
        RestartFilter(mode="magic")


def test_span_mode_keeps_top_cluster():
    f = RestartFilter(cluster_width=0.25, min_keep=1)
    energies = [-9.0, -8.9, -8.8, -3.0, -2.5]
    decision = f.select(energies)
    assert set(decision.kept_indices) == {0, 1, 2}
    assert set(decision.dropped_indices) == {3, 4}


def test_min_keep_enforced():
    f = RestartFilter(cluster_width=0.01, min_keep=3)
    energies = [-9.0, -5.0, -4.0, -3.0]
    decision = f.select(energies)
    assert decision.num_kept == 3
    assert 0 in decision.kept_indices


def test_small_population_all_kept():
    f = RestartFilter(min_keep=2)
    decision = f.select([-1.0, -2.0])
    assert decision.num_kept == 2
    assert decision.num_dropped == 0


def test_degenerate_values_all_kept():
    f = RestartFilter(min_keep=1)
    decision = f.select([-5.0, -5.0, -5.0])
    assert decision.num_kept == 3


def test_gap_mode_cuts_at_dominant_gap():
    f = RestartFilter(mode="gap", min_keep=1)
    energies = [-9.0, -8.95, -8.9, -4.0, -3.9]
    decision = f.select(energies)
    assert set(decision.kept_indices) == {0, 1, 2}


def test_gap_mode_single_cluster_keeps_all():
    f = RestartFilter(mode="gap", min_keep=1)
    energies = [-9.0, -8.8, -8.6, -8.4, -8.2]
    decision = f.select(energies)
    assert decision.num_kept == 5


def test_empty_rejected():
    with pytest.raises(SchedulingError):
        RestartFilter().select([])


@given(
    st.lists(st.floats(min_value=-100, max_value=0, allow_nan=False), min_size=1, max_size=30),
    st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_filter_invariants(energies, width):
    f = RestartFilter(cluster_width=width, min_keep=1)
    decision = f.select(energies)
    kept = set(decision.kept_indices)
    dropped = set(decision.dropped_indices)
    # Partition of all indices.
    assert kept | dropped == set(range(len(energies)))
    assert not (kept & dropped)
    # The best restart is always kept.
    assert int(np.argmin(energies)) in kept
    # Everyone kept is at least as good as everyone dropped.
    if dropped:
        assert max(energies[i] for i in kept) <= min(energies[i] for i in dropped) + 1e-12


def test_detect_clusters_groups_and_orders():
    values = [1.0, 1.1, 1.05, 5.0, 5.1, 9.0]
    clusters = detect_clusters(values)
    assert len(clusters) == 3
    assert set(clusters[0]) == {0, 1, 2}
    assert set(clusters[1]) == {3, 4}
    assert set(clusters[2]) == {5}


def test_detect_clusters_single_value():
    assert detect_clusters([2.0]) == [[0]]


def test_detect_clusters_uniform_spacing_is_one_cluster():
    values = list(np.linspace(0, 1, 10))
    assert len(detect_clusters(values, gap_factor=2.0)) == 1
