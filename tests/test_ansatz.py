"""Unit tests for Pauli evolution and the TwoLocal ansatz."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.circuits import PauliString, QuantumCircuit
from repro.exceptions import ReproError
from repro.sim.statevector import circuit_unitary
from repro.vqa import TwoLocalAnsatz, append_pauli_evolution


@pytest.mark.parametrize("label", ["Z", "X", "Y", "ZZ", "XY", "YX", "XYZ", "ZIY"])
@pytest.mark.parametrize("angle", [0.0, 0.7, -1.3])
def test_pauli_evolution_matches_expm(label, angle):
    pauli = PauliString(label)
    qc = QuantumCircuit(pauli.num_qubits)
    append_pauli_evolution(qc, pauli, angle)
    u = circuit_unitary(qc)
    expected = expm(-0.5j * angle * pauli.to_matrix())
    idx = np.unravel_index(np.argmax(np.abs(expected)), expected.shape)
    phase = u[idx] / expected[idx]
    assert np.allclose(u, phase * expected, atol=1e-9), label


def test_pauli_evolution_identity_is_noop():
    qc = QuantumCircuit(2)
    append_pauli_evolution(qc, PauliString.identity(2), 0.5)
    assert len(qc) == 0


def test_pauli_evolution_symbolic_parameter():
    from repro.circuits import Parameter

    theta = Parameter("t")
    pauli = PauliString("XY")
    qc = QuantumCircuit(2)
    append_pauli_evolution(qc, pauli, theta)
    bound = qc.bind([0.9])
    expected = expm(-0.45j * pauli.to_matrix())
    u = circuit_unitary(bound)
    idx = np.unravel_index(np.argmax(np.abs(expected)), expected.shape)
    assert np.allclose(u, (u[idx] / expected[idx]) * expected, atol=1e-9)


def test_two_local_parameter_count():
    ansatz = TwoLocalAnsatz(4, reps=3)
    assert ansatz.num_parameters == 4 * 4
    assert ansatz.template.count_ops()["cx"] == 3 * 3  # linear entangler


def test_two_local_entanglement_options():
    assert TwoLocalAnsatz(4, 1, "ring").template.count_ops()["cx"] == 4
    assert TwoLocalAnsatz(4, 1, "full").template.count_ops()["cx"] == 6
    with pytest.raises(ReproError):
        TwoLocalAnsatz(4, 1, "diagonal")
    with pytest.raises(ReproError):
        TwoLocalAnsatz(4, reps=-1)


def test_two_local_zero_params_is_identity():
    ansatz = TwoLocalAnsatz(3, reps=0)
    state = circuit_unitary(ansatz.bind([0.0] * 3))[:, 0]
    assert abs(state[0]) == pytest.approx(1.0)


def test_two_local_bind_validation():
    ansatz = TwoLocalAnsatz(3, reps=1)
    with pytest.raises(ReproError):
        ansatz.bind([0.1])


def test_two_local_random_parameters_shape():
    ansatz = TwoLocalAnsatz(3, reps=2)
    x = ansatz.random_parameters(np.random.default_rng(0))
    assert x.shape == (ansatz.num_parameters,)
    assert (np.abs(x) <= np.pi).all()
