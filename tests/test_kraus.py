"""Unit tests for Kraus channels and their density-matrix application."""

import numpy as np
import pytest

from repro.exceptions import NoiseModelError
from repro.sim.kraus import (
    KrausChannel,
    _embed_apply,
    apply_channel_stacked,
    identity_channel,
    unitary_channel,
)
from tests.conftest import random_density

_X = np.array([[0, 1], [1, 0]], dtype=complex)


def test_cptp_validation():
    with pytest.raises(NoiseModelError):
        KrausChannel([0.5 * np.eye(2)])
    KrausChannel([np.eye(2)])  # ok


def test_empty_rejected():
    with pytest.raises(NoiseModelError):
        KrausChannel([])


def test_non_power_of_two_rejected():
    with pytest.raises(NoiseModelError):
        KrausChannel([np.eye(3)])


def test_prunes_zero_operators():
    ops = [np.eye(2), np.zeros((2, 2))]
    # Not CPTP with the zero op removed... use scaled identity pair.
    ch = KrausChannel([np.eye(2), np.zeros((2, 2))])
    assert len(ch.operators) == 1


def test_identity_channel_preserves_state():
    rho = random_density(2, seed=1)
    ch = identity_channel(1)
    out = ch.apply_to_density(rho, [0], 2)
    assert np.allclose(out, rho)


def test_unitary_channel_average_fidelity():
    assert unitary_channel(np.eye(2)).average_fidelity() == pytest.approx(1.0)
    assert unitary_channel(_X).average_fidelity() == pytest.approx(1.0 / 3.0)


def test_compose_is_sequential_application():
    a = KrausChannel([np.sqrt(0.8) * np.eye(2), np.sqrt(0.2) * _X])
    b = unitary_channel(_X)
    composed = a.compose(b)
    rho = random_density(1, seed=2)
    via_compose = composed.apply_to_density(rho, [0], 1)
    step = a.apply_to_density(rho, [0], 1)
    via_steps = b.apply_to_density(step, [0], 1)
    assert np.allclose(via_compose, via_steps)


def test_compose_size_mismatch():
    with pytest.raises(NoiseModelError):
        identity_channel(1).compose(identity_channel(2))


def test_apply_preserves_trace_and_hermiticity():
    ch = KrausChannel([np.sqrt(0.7) * np.eye(2), np.sqrt(0.3) * _X])
    rho = random_density(3, seed=3)
    out = ch.apply_to_density(rho, [1], 3)
    assert np.trace(out) == pytest.approx(1.0)
    assert np.allclose(out, out.conj().T)


def test_stacked_matches_embed_1q():
    ch = KrausChannel([np.sqrt(0.6) * np.eye(2), np.sqrt(0.4) * _X])
    rho = random_density(3, seed=4)
    for q in range(3):
        fast = apply_channel_stacked(rho, np.stack(ch.operators), (q,), 3)
        slow = sum(_embed_apply(rho, k, (q,), 3) for k in ch.operators)
        assert np.allclose(fast, slow, atol=1e-12)


def test_stacked_matches_embed_2q_all_orders():
    from repro.circuits.gates import cx_matrix

    ops = [cx_matrix()]
    rho = random_density(3, seed=5)
    for qubits in [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)]:
        fast = apply_channel_stacked(rho, np.stack(ops), qubits, 3)
        slow = _embed_apply(rho, ops[0], qubits, 3)
        assert np.allclose(fast, slow, atol=1e-12), qubits


def test_stacked_rejects_3q():
    with pytest.raises(NoiseModelError):
        apply_channel_stacked(random_density(3), np.eye(8)[None], (0, 1, 2), 3)


def test_channel_qubit_count_mismatch():
    ch = identity_channel(2)
    with pytest.raises(NoiseModelError):
        ch.apply_to_density(random_density(2), [0], 2)


def test_choi_matrix_positive_semidefinite():
    ch = KrausChannel([np.sqrt(0.9) * np.eye(2), np.sqrt(0.1) * _X])
    eigs = np.linalg.eigvalsh(ch.choi_matrix())
    assert (eigs > -1e-10).all()
    assert np.trace(ch.choi_matrix()) == pytest.approx(2.0)
