"""Unit tests for the circuit-cutting subsystem (repro.cutting)."""

import numpy as np
import pytest

from repro.circuits import Hamiltonian, QuantumCircuit
from repro.cutting import (
    CutPoint,
    cut_and_run,
    cut_circuit,
    execute_fragments,
    find_cuts,
    reconstruct_expectation,
    reconstruct_probabilities,
)
from repro.cutting.variants import INIT_PREP_GATES, INIT_STATES
from repro.exceptions import CuttingError, SimulationError
from repro.sim import StatevectorSimulator, run_statevector, run_statevector_batch
from repro.sim.statevector import circuit_unitary


def clustered_circuit(
    num_qubits: int, split: int, seed: int = 0, cross_gates: int = 1, depth: int = 2
) -> QuantumCircuit:
    """Two random clusters joined by ``cross_gates`` CX bridges."""
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, name=f"clustered{num_qubits}")

    def block(qubits, reps):
        for _ in range(reps):
            for q in qubits:
                qc.ry(rng.uniform(-np.pi, np.pi), q)
                qc.rz(rng.uniform(-np.pi, np.pi), q)
            for a, b in zip(qubits[:-1], qubits[1:]):
                qc.cx(a, b)

    left = list(range(split))
    right = list(range(split, num_qubits))
    block(left, depth)
    for _ in range(cross_gates):
        qc.cx(left[-1], right[0])
    block(right, depth)
    block(left, 1)
    return qc


def exact_probabilities(qc: QuantumCircuit) -> np.ndarray:
    return np.abs(run_statevector(qc)) ** 2


# -- round trips ---------------------------------------------------------------


@pytest.mark.parametrize(
    "num_qubits,split,width", [(4, 2, 3), (5, 3, 4), (6, 3, 4), (8, 4, 5)]
)
def test_round_trip_random_clustered(num_qubits, split, width):
    qc = clustered_circuit(num_qubits, split, seed=num_qubits * 7)
    result = cut_and_run(qc, width)
    assert 1 <= result.num_cuts <= 2
    assert result.cut.max_fragment_width <= width
    assert np.allclose(result.probabilities, exact_probabilities(qc), atol=1e-9)


def test_round_trip_two_cuts_chain():
    rng = np.random.default_rng(11)
    qc = QuantumCircuit(9)

    def block(qubits):
        for q in qubits:
            qc.ry(rng.uniform(-np.pi, np.pi), q)
        for a, b in zip(qubits[:-1], qubits[1:]):
            qc.cx(a, b)

    block([0, 1, 2])
    qc.cx(2, 3)
    block([3, 4, 5])
    qc.cx(5, 6)
    block([6, 7, 8])
    result = cut_and_run(qc, 4)
    assert result.num_cuts == 2
    assert np.allclose(result.probabilities, exact_probabilities(qc), atol=1e-9)


def test_ten_qubit_circuit_on_six_qubit_fragments():
    """Acceptance case: 10 qubits cut into <= 6-qubit fragments."""
    qc = clustered_circuit(10, 5, seed=42)
    result = cut_and_run(qc, 6)
    assert result.cut.max_fragment_width <= 6
    assert np.allclose(result.probabilities, exact_probabilities(qc), atol=1e-9)


def test_round_trip_with_mid_circuit_barriers():
    """Edge case: full-width barriers sit across the cut boundary."""
    qc = QuantumCircuit(4)
    qc.h(0)
    qc.cx(0, 1)
    qc.barrier()
    qc.cx(1, 2)
    qc.barrier()
    qc.cx(2, 3)
    qc.ry(0.3, 3)
    result = cut_and_run(qc, 3)
    assert result.num_cuts >= 1
    assert np.allclose(result.probabilities, exact_probabilities(qc), atol=1e-9)


def test_explicit_cut_point_round_trip():
    qc = QuantumCircuit(3)
    qc.h(0)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.ry(0.4, 2)
    # Wire 1 has ops [cx01, cx12]; cut between them.
    cut = cut_circuit(qc, [CutPoint(qubit=1, wire_pos=0)])
    assert cut.num_fragments == 2
    assert [f.width for f in cut.fragments] == [2, 2]
    probs = reconstruct_probabilities(cut)
    assert np.allclose(probs, exact_probabilities(qc), atol=1e-9)


def test_idle_qubit_stays_zero():
    qc = QuantumCircuit(5)
    qc.h(0)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(2, 3)  # qubit 4 untouched
    cut = cut_circuit(qc, find_cuts(qc, 3))
    probs = reconstruct_probabilities(cut)
    assert np.allclose(probs, exact_probabilities(qc), atol=1e-9)


def test_measurements_are_stripped():
    qc = QuantumCircuit(4)
    qc.h(0)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(2, 3)
    qc.measure_all()
    result = cut_and_run(qc, 3)
    assert np.allclose(
        result.probabilities, exact_probabilities(qc.remove_measurements()),
        atol=1e-9,
    )


# -- expectation values --------------------------------------------------------


def test_expectation_diagonal_hamiltonian():
    qc = clustered_circuit(6, 3, seed=5)
    h = Hamiltonian.from_labels({"ZZIIII": 0.5, "IIIZZI": -1.0, "IIIIIZ": 0.25})
    cut = cut_circuit(qc, find_cuts(qc, 4))
    expected = StatevectorSimulator().expectation(qc, h)
    assert reconstruct_expectation(cut, h) == pytest.approx(expected, abs=1e-9)


def test_expectation_off_diagonal_hamiltonian():
    qc = clustered_circuit(5, 3, seed=9)
    h = Hamiltonian.from_labels(
        {"XXIII": 0.7, "IIIZZ": -1.2, "IIYIY": 0.45, "ZIIII": 0.3}
    )
    cut = cut_circuit(qc, find_cuts(qc, 4))
    expected = StatevectorSimulator().expectation(qc, h)
    assert reconstruct_expectation(cut, h) == pytest.approx(expected, abs=1e-8)


def test_expectation_with_xy_term_on_idle_qubit():
    """Rotations on idle qubits are applied analytically, not rejected."""
    qc = QuantumCircuit(5)
    qc.h(0)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(2, 3)  # qubit 4 idle
    h = Hamiltonian.from_labels(
        {"XIIII": 0.5, "YIIII": -0.3, "ZIIII": 0.7, "IIIZZ": 1.0, "XIIIX": 0.4}
    )
    cut = cut_circuit(qc, find_cuts(qc, 3))
    expected = StatevectorSimulator().expectation(qc, h)
    assert reconstruct_expectation(cut, h) == pytest.approx(expected, abs=1e-9)


def test_hamiltonian_expectation_within_1e6():
    """Acceptance: 10-qubit <H> through <=6-qubit fragments to 1e-6."""
    qc = clustered_circuit(10, 5, seed=17)
    h = Hamiltonian.from_labels(
        {
            "ZZ" + "I" * 8: 0.8,
            "I" * 4 + "ZZ" + "I" * 4: -0.6,
            "I" * 8 + "ZZ": 1.1,
            "X" + "I" * 9: 0.2,
            "I" * 9 + "X": -0.35,
        }
    )
    cut = cut_circuit(qc, find_cuts(qc, 6))
    assert cut.max_fragment_width <= 6
    expected = StatevectorSimulator().expectation(qc, h)
    assert reconstruct_expectation(cut, h) == pytest.approx(expected, abs=1e-6)


# -- noisy backend path --------------------------------------------------------


def test_noisy_backend_reconstruction_is_normalized():
    from repro.noise import hypothetical_lf
    from repro.sim import DensityMatrixSimulator

    qc = clustered_circuit(4, 2, seed=2, depth=1)
    cut = cut_circuit(qc, find_cuts(qc, 3))
    dm = DensityMatrixSimulator(hypothetical_lf().noise_model())
    probs = reconstruct_probabilities(cut, backend=dm)
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)
    # Noisy quasi-probabilities may dip slightly negative, never grossly.
    assert probs.min() > -1e-6


# -- search and validation -----------------------------------------------------


def test_find_cuts_no_cut_when_circuit_fits():
    qc = clustered_circuit(4, 2)
    assert find_cuts(qc, 4) == []


def test_find_cuts_rejects_dense_circuits():
    rng = np.random.default_rng(0)
    qc = QuantumCircuit(6)
    for _ in range(4):
        for a in range(6):
            for b in range(a + 1, 6):
                qc.cx(a, b)
                qc.ry(rng.uniform(-1, 1), b)
    with pytest.raises(CuttingError):
        find_cuts(qc, 3)


def test_find_cuts_rejects_wide_gates():
    qc = QuantumCircuit(4)
    qc.cx(0, 1)
    with pytest.raises(CuttingError):
        find_cuts(qc, 1)


def test_find_cuts_unknown_strategy():
    qc = clustered_circuit(6, 3)
    with pytest.raises(CuttingError):
        find_cuts(qc, 4, strategy="miqcp")


def test_find_cuts_interleaved_instruction_order():
    """Bisection finds the cluster structure greedy streaming misses."""
    rng = np.random.default_rng(3)
    qc = QuantumCircuit(6)
    for _ in range(3):
        for q in range(6):
            qc.ry(rng.uniform(-np.pi, np.pi), q)
        qc.cx(0, 1)
        qc.cx(3, 4)
        qc.cx(1, 2)
        qc.cx(4, 5)
    qc.cx(2, 3)
    result = cut_and_run(qc, 4)
    assert np.allclose(result.probabilities, exact_probabilities(qc), atol=1e-9)


def test_cut_circuit_rejects_bad_positions():
    qc = QuantumCircuit(2)
    qc.h(0)
    qc.cx(0, 1)
    with pytest.raises(CuttingError):
        cut_circuit(qc, [CutPoint(qubit=1, wire_pos=0)])  # wire has 1 op
    with pytest.raises(CuttingError):
        cut_circuit(qc, [CutPoint(qubit=5, wire_pos=0)])  # no such qubit


def test_cut_circuit_rejects_non_separating_cut():
    # Cutting q0 between the two CX leaves both sides connected via q1.
    qc = QuantumCircuit(2)
    qc.cx(0, 1)
    qc.cx(0, 1)
    with pytest.raises(CuttingError):
        cut_circuit(qc, [CutPoint(qubit=0, wire_pos=0)])


def test_variant_counts():
    qc = clustered_circuit(6, 3, seed=1)
    cut = cut_circuit(qc, find_cuts(qc, 4))
    tensors = execute_fragments(cut)
    assert sum(t.executions for t in tensors) == cut.total_variants
    for fragment, tensor in zip(cut.fragments, tensors):
        k_in = len(fragment.input_cuts)
        k_out = len(fragment.output_cuts)
        assert tensor.tensor.shape[: k_in + k_out] == (4,) * (k_in + k_out)


def test_init_prep_gates_match_states():
    """The prep gate sequences actually produce the six init states."""
    for prep, target in zip(INIT_PREP_GATES, INIT_STATES):
        qc = QuantumCircuit(1)
        for gate in prep:
            qc.append(gate, [0])
        state = run_statevector(qc)
        # Equal up to global phase.
        overlap = abs(np.vdot(state, target))
        assert overlap == pytest.approx(1.0, abs=1e-12)


# -- batched statevector entry point -------------------------------------------


def test_run_statevector_batch_matches_single_runs():
    qc = clustered_circuit(4, 2, seed=8, depth=1)
    rng = np.random.default_rng(0)
    raw = rng.normal(size=(5, 16)) + 1j * rng.normal(size=(5, 16))
    states = raw / np.linalg.norm(raw, axis=1, keepdims=True)
    batch = run_statevector_batch(qc, states)
    for row in range(5):
        single = run_statevector(qc, initial=states[row])
        assert np.allclose(batch[row], single, atol=1e-12)


def test_run_statevector_batch_shape_check():
    qc = QuantumCircuit(2)
    with pytest.raises(SimulationError):
        run_statevector_batch(qc, np.ones((2, 3)))


def test_circuit_unitary_one_pass_matches_columns():
    qc = clustered_circuit(4, 2, seed=3, depth=1)
    u = circuit_unitary(qc)
    assert np.allclose(u @ u.conj().T, np.eye(16), atol=1e-10)
    for col in [0, 5, 15]:
        basis = np.zeros(16, dtype=complex)
        basis[col] = 1.0
        assert np.allclose(u[:, col], run_statevector(qc, initial=basis))


def test_run_statevector_rejects_unnormalized_initial():
    qc = QuantumCircuit(1)
    qc.h(0)
    with pytest.raises(SimulationError):
        run_statevector(qc, initial=np.array([1.0, 1.0]))
    # A properly normalized custom state is fine.
    ok = np.array([1.0, 1.0]) / np.sqrt(2.0)
    run_statevector(qc, initial=ok)
