"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP
660 editable installs (``pip install -e .``) cannot build an editable
wheel.  This shim lets ``python setup.py develop`` (and thus
``pip install -e . --no-build-isolation --use-pep517=false`` on older
pips) install the package the classic egg-link way.
"""

from setuptools import setup

setup()
