"""Fault-tolerant fleet walkthrough: failures, maintenance, drift,
cancellations, and retries on the Fig 12 queue study.

Builds a fault model exercising every process the engine simulates —
seeded random crashes with repair, performance degradations,
deterministic staggered maintenance windows, calibration drift with
periodic recalibration, user/job cancellations, and an exponential-
backoff retry policy — then runs the same workload pristine and faulty
and compares what the paper's metrics become when the fleet misbehaves:

* goodput vs throughput (completed work minus work burned on jobs that
  were later cancelled or retried to exhaustion);
* *effective* mean relative fidelity (what executions actually saw
  after drift) vs the nominal number;
* the per-device availability timeline, also exported as extra
  swim-lanes in the Chrome trace (https://ui.perfetto.dev).

Everything is deterministic under the seed: run it twice, get the same
crashes at the same instants.

Run:  python examples/fleet_faults.py
"""

from repro.cloud import (
    FaultModel,
    MaintenanceWindow,
    QoncordPolicy,
    QueueSimulator,
    RetryPolicy,
    cancel_user,
    generate_workload,
    hypothetical_fleet,
    sample_cancellations,
)

TRACE_PATH = "fleet_faults_trace.json"


def main() -> None:
    workload = generate_workload(num_jobs=1000, vqa_ratio=0.5, seed=42)

    # ~2% of jobs get cancelled by their owners partway through, plus
    # one user rage-quits the moment the study starts.
    cancels = sample_cancellations(workload, rate=0.02, seed=42)
    cancels += (cancel_user(7, at=0.0),)

    faults = FaultModel(
        name="rough-day",
        mean_time_between_failures=20_000.0,   # per-device MTBF (sim s)
        mean_repair_seconds=900.0,
        mean_time_between_degradations=15_000.0,
        mean_degraded_seconds=1_200.0,
        degraded_slowdown=1.5,                 # executions run 1.5x longer
        maintenance=MaintenanceWindow(
            period_seconds=40_000.0, duration_seconds=1_800.0,
            stagger_seconds=2_000.0,           # windows roll across fleet
        ),
        drift_rate=2e-5,                       # fidelity decays between...
        recalibration_interval_seconds=20_000.0,  # ...periodic recals
        retry=RetryPolicy(max_attempts=3, backoff_seconds=60.0,
                          backoff_factor=2.0, reroute=True),
        cancellations=cancels,
    )

    clean = QueueSimulator(
        hypothetical_fleet(6), QoncordPolicy(), seed=1
    ).run(workload)
    rough = QueueSimulator(
        hypothetical_fleet(6), QoncordPolicy(), seed=1, faults=faults
    ).run(workload)

    print(f"{'':24s}{'pristine':>12s}{'rough day':>12s}")
    print(f"{'makespan (h)':24s}{clean.makespan / 3600:12.2f}"
          f"{rough.makespan / 3600:12.2f}")
    print(f"{'throughput (exec/s)':24s}{clean.throughput:12.4f}"
          f"{rough.throughput:12.4f}")
    print(f"{'goodput (exec/s)':24s}{clean.goodput:12.4f}"
          f"{rough.goodput:12.4f}")
    print(f"{'fidelity (nominal)':24s}"
          f"{clean.mean_relative_fidelity():12.4f}"
          f"{rough.mean_relative_fidelity():12.4f}")
    print(f"{'fidelity (effective)':24s}{'—':>12s}"
          f"{rough.mean_relative_fidelity(effective=True):12.4f}")

    stats = rough.faults
    print("\nfault log:")
    for key, value in stats.counters().items():
        if value:
            print(f"  {key:22s} {value}")
    print(f"  {'wasted compute (s)':22s} {stats.wasted_seconds:.0f}")
    if stats.cancelled_jobs:
        shown = sorted(stats.cancelled_jobs)[:8]
        print(f"  cancelled jobs         {shown}"
              f"{' ...' if len(stats.cancelled_jobs) > 8 else ''}")
    if stats.exhausted_jobs:
        print(f"  retry-exhausted jobs   {sorted(stats.exhausted_jobs)}")

    print("\navailability (fraction of makespan per state):")
    for name, intervals in rough.availability_timeline().items():
        total = {}
        for start, end, state in intervals:
            total[state] = total.get(state, 0.0) + (end - start)
        horizon = sum(total.values())
        line = "  ".join(
            f"{state}={total.get(state, 0.0) / horizon:6.1%}"
            for state in ("online", "degraded", "maintenance", "down")
        )
        print(f"  {name:12s} {line}")

    events = rough.export_chrome_trace(TRACE_PATH)
    print(f"\nwrote {events} trace events to {TRACE_PATH} "
          f"(device lanes + availability lanes; open in Perfetto)")

    # Determinism: the rough day replays exactly.
    again = QueueSimulator(
        hypothetical_fleet(6), QoncordPolicy(), seed=1, faults=faults
    ).run(workload)
    assert again.faults.counters() == stats.counters()
    print("re-run with the same seed reproduced the identical fault log")


if __name__ == "__main__":
    main()
