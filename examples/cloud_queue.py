"""Cloud-scale queue simulation (paper Fig 12).

Simulates a 1000-job workload (tasks + runtime VQA sessions) over ten
hypothetical devices with execution fidelities 0.3-0.9, under all six
scheduling policies.  Prints the fidelity-throughput frontier: Qoncord
should be the only policy near the top-right corner.

Run:  python examples/cloud_queue.py
"""

from repro.cloud import (
    generate_workload,
    hypothetical_fleet,
    run_sweep,
    standard_policies,
    sweep_policies,
)


def main() -> None:
    fleet = hypothetical_fleet(num_devices=10, fidelity_range=(0.3, 0.9))
    print("device fleet:")
    for device in fleet:
        print(f"  {device.name}  fidelity={device.fidelity:.2f} "
              f"speed={device.speed_factor:.2f}")

    for vqa_ratio in (0.1, 0.5, 0.9):
        workload = generate_workload(
            num_jobs=1000, vqa_ratio=vqa_ratio, seed=42
        )
        results = sweep_policies(
            standard_policies(), workload, hypothetical_fleet, seed=1
        )
        print(f"\nVQA job ratio = {vqa_ratio:.0%} "
              f"({workload.total_executions} circuit executions)")
        print(f"  {'policy':20s} {'rel. fidelity':>14s} {'throughput':>11s} "
              f"{'mean turnaround':>16s}")
        for name, res in sorted(
            results.items(), key=lambda kv: -kv[1].mean_relative_fidelity()
        ):
            print(f"  {name:20s} {res.mean_relative_fidelity():>14.3f} "
                  f"{res.throughput:>11.3f} {res.mean_turnaround():>15.0f}s")

    # Seed-averaged frontier via the sweep runner (fans grid cells over a
    # process pool when more than one core is available).
    sweep = run_sweep(
        standard_policies(), vqa_ratios=(0.5,), seeds=range(3), num_jobs=1000
    )
    print("\nSeed-averaged frontier at 50% VQA (3 seeds):")
    for name, (fidelity, throughput) in sorted(
        sweep.frontier(0.5).items(), key=lambda kv: -kv[1][0]
    ):
        print(f"  {name:20s} fidelity={fidelity:.3f} "
              f"throughput={throughput:.3f}")


if __name__ == "__main__":
    main()
