"""Error-mitigation ladder on a hardware-efficient ansatz (paper Fig 3).

Applies the four mitigation techniques cumulatively — dynamical
decoupling, TREX readout mitigation, Pauli twirling, zero-noise
extrapolation — to a two-local circuit on a noisy device model with both
stochastic (depolarizing, T1/T2, readout) and coherent (idle drift, ZZ
over-rotation) error components, and reports the fidelity/latency
trade-off each step buys.

Run:  python examples/error_mitigation.py
"""

import numpy as np

from repro.circuits import Hamiltonian, PauliString
from repro.mitigation import (
    ReadoutMitigator,
    apply_dynamical_decoupling,
    circuit_duration,
    fold_global,
    linear_extrapolate,
    schedule_idle_delays,
    twirl_circuit,
)
from repro.noise import GateErrorSpec, NoiseModel
from repro.sim import DensityMatrixSimulator, StatevectorSimulator
from repro.vqa import TwoLocalAnsatz

NUM_QUBITS = 6


def main() -> None:
    noise_model = NoiseModel(
        name="example-device",
        spec_1q=GateErrorSpec(0.0004, 35e-9),
        spec_2q=GateErrorSpec(0.008, 450e-9),
        t1=120e-6,
        t2=100e-6,
        readout_error=0.03,
        readout_duration=750e-9,
        static_phase_drift=2e5,
        coherent_2q_angle=0.06,
    )
    ansatz = TwoLocalAnsatz(NUM_QUBITS, reps=2)
    circuit = ansatz.bind(ansatz.random_parameters(np.random.default_rng(7)))
    observable = Hamiltonian(NUM_QUBITS)
    for i in range(NUM_QUBITS - 1):
        observable.add_term(
            1.0, PauliString.from_sparse(NUM_QUBITS, {i: "Z", i + 1: "Z"})
        )

    ideal = StatevectorSimulator().expectation(circuit, observable)
    backend = DensityMatrixSimulator(noise_model)
    scheduled = schedule_idle_delays(circuit, noise_model)
    mitigator = ReadoutMitigator(
        noise_model.readout_flip_probabilities(NUM_QUBITS)
    )
    rng = np.random.default_rng(3)

    def twirled_probs(circ, samples=6):
        acc = None
        for _ in range(samples):
            p = backend.probabilities(twirl_circuit(circ, rng))
            acc = p if acc is None else acc + p
        return acc / samples

    print(f"ideal <H> = {ideal:.4f}\n")
    print(f"{'mode':12s} {'<H>':>8s} {'|error|':>8s} {'latency':>10s}")

    def report(mode, value, latency):
        print(f"{mode:12s} {value:8.4f} {abs(value - ideal):8.4f} "
              f"{latency * 1e6:8.1f}us")

    base_latency = circuit_duration(scheduled, noise_model)
    report("none", backend.expectation(scheduled, observable), base_latency)

    decoupled = apply_dynamical_decoupling(scheduled, noise_model)
    report("+DD", backend.expectation(decoupled, observable),
           circuit_duration(decoupled, noise_model))

    probs = mitigator.mitigate_probabilities(backend.probabilities(decoupled))
    report("+TREX", float(np.dot(probs, observable.diagonal())),
           circuit_duration(decoupled, noise_model))

    probs = mitigator.mitigate_probabilities(twirled_probs(decoupled))
    report("+Twirling", float(np.dot(probs, observable.diagonal())),
           circuit_duration(decoupled, noise_model) * 6)

    values = []
    for scale in (1, 3):
        folded = fold_global(decoupled, scale)
        p = mitigator.mitigate_probabilities(twirled_probs(folded))
        values.append(float(np.dot(p, observable.diagonal())))
    report("+ZNE", linear_extrapolate([1, 3], values),
           circuit_duration(decoupled, noise_model) * 6 * 4)


if __name__ == "__main__":
    main()
