"""Three-tier device hierarchy (paper Section VI-C, Figs 15/16).

Qoncord generalizes beyond an LF/HF pair: this example schedules a QAOA
task across ibmq_toronto (LF, superconducting), ibmq_kolkata (MF,
superconducting) and IonQ-Forte (HF, trapped-ion, all-to-all — note the
different transpilation basis).  Restarts are progressively filtered and
promoted up the hierarchy.

Run:  python examples/three_tier_hierarchy.py
"""

import numpy as np

from repro.core import Qoncord, VQAJob
from repro.noise import ibmq_kolkata, ibmq_toronto, ionq_forte
from repro.vqa import MaxCutProblem, QAOAAnsatz


def main() -> None:
    problem = MaxCutProblem.random(num_nodes=7, edge_probability=0.5, seed=4)
    job = VQAJob(
        ansatz=QAOAAnsatz(problem.graph, layers=1),
        hamiltonian=problem.hamiltonian,
        ground_energy=problem.ground_energy,
        num_restarts=8,
        max_iterations_per_stage=35,
        name="three-tier",
    )
    devices = [ibmq_kolkata(), ionq_forte(), ibmq_toronto()]  # any order
    qoncord = Qoncord(seed=0, min_fidelity=0.01)
    result = qoncord.run(job, devices)

    print(f"problem: {problem}")
    print(f"hierarchy (ranked by Eq 1): {result.device_order}")
    print(f"estimated fidelities: "
          f"{ {k: round(v, 3) for k, v in result.device_fidelities.items()} }")
    print(f"\nfilter decisions per boundary:")
    for i, decision in enumerate(result.filter_decisions):
        print(f"  stage {i}: kept {decision.num_kept}, "
              f"dropped {decision.num_dropped} "
              f"(threshold E <= {decision.threshold:.3f})")
    print(f"\nper-restart journeys:")
    for trace in result.restarts:
        stages = " -> ".join(
            f"{s.device_name}[{s.iterations}it]" for s in trace.stages
        )
        status = (
            f"final AR={problem.approximation_ratio(trace.final_energy):.3f}"
            if trace.survived
            else f"terminated at stage {trace.terminated_at_stage}"
        )
        print(f"  restart {trace.restart_index}: {stages}  {status}")
    print(f"\ncircuits per device: {result.circuits_per_device}")
    print(f"best AR: {problem.approximation_ratio(result.best_energy):.3f}")


if __name__ == "__main__":
    main()
