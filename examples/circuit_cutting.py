"""Circuit cutting: run a 10-qubit circuit on a fleet of 6-qubit devices.

The fleet's largest device is too small for the circuit, so we:

1. Search for wire-cut points (greedy / graph-bisection, minimizing cuts).
2. Split the circuit into fragments that each fit a device.
3. Execute every init/measurement fragment variant — one batched
   statevector sweep locally, and fanned out across the simulated cloud
   fleet in parallel.
4. Reconstruct the full-circuit distribution by tensor contraction and
   check it against the (here still affordable) uncut simulation.

Run:  python examples/circuit_cutting.py
"""

import numpy as np

from repro.circuits import Hamiltonian, QuantumCircuit
from repro.cloud import (
    CloudDevice,
    FragmentJob,
    LeastBusyPolicy,
    QueueSimulator,
    WidthAwarePolicy,
    fanout_summary,
)
from repro.cutting import cut_and_run, reconstruct_expectation
from repro.sim import StatevectorSimulator, hellinger_fidelity, run_statevector
from repro.transpile import fits_on_device

DEVICE_QUBITS = 6


def build_circuit(num_qubits: int = 10, seed: int = 7) -> QuantumCircuit:
    """Two entangled 5-qubit clusters joined by one CX bridge."""
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, name="two_cluster")

    def block(qubits):
        for _ in range(2):
            for q in qubits:
                qc.ry(rng.uniform(-np.pi, np.pi), q)
            for a, b in zip(qubits[:-1], qubits[1:]):
                qc.cx(a, b)

    block(list(range(5)))
    qc.cx(4, 5)
    block(list(range(5, 10)))
    return qc


def main() -> None:
    circuit = build_circuit()
    print(f"circuit: {circuit}")
    print(f"fits on a {DEVICE_QUBITS}-qubit device? "
          f"{fits_on_device(circuit, DEVICE_QUBITS)}")

    # -- cut, execute (batched statevector), reconstruct ---------------------
    result = cut_and_run(circuit, max_fragment_width=DEVICE_QUBITS)
    cut = result.cut
    print(f"\ncut plan: {cut.num_cuts} cut(s) -> "
          f"{[f.width for f in cut.fragments]}-qubit fragments, "
          f"{result.executions} fragment variants executed")

    exact = np.abs(run_statevector(circuit)) ** 2
    fidelity = hellinger_fidelity(result.probabilities, exact)
    print(f"reconstruction fidelity vs uncut simulation: {fidelity:.12f}")

    hamiltonian = Hamiltonian.from_labels(
        {
            "ZZ" + "I" * 8: 0.8,
            "I" * 4 + "ZZ" + "I" * 4: -0.6,
            "I" * 8 + "ZZ": 1.1,
            "X" + "I" * 9: 0.2,
        }
    )
    energy_cut = reconstruct_expectation(cut, hamiltonian)
    energy_exact = StatevectorSimulator().expectation(circuit, hamiltonian)
    print(f"<H> cut: {energy_cut:+.10f}   uncut: {energy_exact:+.10f}   "
          f"|diff| = {abs(energy_cut - energy_exact):.2e}")

    # -- fan the variant sweep out over the cloud fleet ----------------------
    fleet = [
        CloudDevice(f"dev{i:02d}", fidelity=0.6 + 0.05 * i,
                    num_qubits=(4 if i < 2 else DEVICE_QUBITS))
        for i in range(6)
    ]
    fragment_job = FragmentJob.from_cut_circuit(cut, base_execution_seconds=8.0)
    sim = QueueSimulator(fleet, WidthAwarePolicy(LeastBusyPolicy()), seed=0)
    summary = fanout_summary(sim.run(fragment_job.to_workload()), fragment_job)
    print(f"\nfleet fan-out: {summary['variants']:.0f} variants over "
          f"{summary['devices_used']:.0f} devices")
    print(f"serial time {summary['serial_seconds']:.0f} s -> makespan "
          f"{summary['makespan_seconds']:.0f} s "
          f"(speedup x{summary['parallel_speedup']:.2f})")


if __name__ == "__main__":
    main()
