"""Tour of the ``repro.obs`` telemetry subsystem on a small fleet run.

Enables metrics + tracing, simulates a Fig 12-style workload (1000 jobs,
6 devices) under the Qoncord policy, then shows the three telemetry
surfaces:

* the per-device wait/utilization summary (Table I-style, but produced
  by the simulation rather than tabulated from provider dashboards);
* the metrics snapshot (counters / gauges / wait-time histograms),
  exported to ``telemetry_metrics.json``;
* a Chrome trace of the simulated fleet timeline, exported to
  ``telemetry_trace.json`` — open it at https://ui.perfetto.dev to see
  one swim-lane per device plus a queue-depth counter track.

Run:  python examples/telemetry_tour.py
"""

import logging

from repro import obs
from repro.cloud import (
    QoncordPolicy,
    QueueSimulator,
    generate_workload,
    hypothetical_fleet,
)

METRICS_PATH = "telemetry_metrics.json"
TRACE_PATH = "telemetry_trace.json"


def main() -> None:
    obs.enable()  # metrics + tracing; off by default, costs nothing off
    obs.configure_logging(logging.INFO)

    fleet = hypothetical_fleet(num_devices=6, fidelity_range=(0.3, 0.9))
    workload = generate_workload(num_jobs=1000, vqa_ratio=0.5, seed=42)
    simulator = QueueSimulator(fleet, QoncordPolicy(), seed=1)
    result = simulator.run(workload)

    print("\n" + result.device_summary())

    stats = result.engine_stats()
    print(f"\nengine: {stats['executions']} executions, "
          f"{stats['queued_executions']} queued "
          f"({stats['direct_starts']} started immediately), "
          f"max queue depth {stats['max_queue_depth']}")

    fleet_hist = result.wait_time_histogram()
    print(f"fleet wait times: mean {fleet_hist.mean:.0f}s "
          f"over {fleet_hist.count} executions")
    for edge, count in zip(fleet_hist.edges, fleet_hist.counts):
        if count:
            print(f"  <= {edge:7.0f}s : {int(count):5d}")
    overflow = int(fleet_hist.counts[-1])
    if overflow:
        print(f"   > {fleet_hist.edges[-1]:7.0f}s : {overflow:5d}")

    obs.export_metrics(METRICS_PATH)
    events = result.export_chrome_trace(TRACE_PATH)
    print(f"\nwrote {METRICS_PATH} (metrics snapshot) and "
          f"{TRACE_PATH} ({events} trace events)")
    print("open the trace at https://ui.perfetto.dev "
          "(one lane per device, queue depth as a counter track)")

    obs.disable()


if __name__ == "__main__":
    main()
