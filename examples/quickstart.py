"""Quickstart: schedule a multi-restart QAOA task across two devices.

Runs the paper's core scenario end-to-end in under a minute:

1. Build a 7-node MaxCut problem and a QAOA ansatz.
2. Let Qoncord rank the fleet (Eq 1), explore every restart on the
   low-fidelity/low-load ibmq_toronto model, filter the weak restarts, and
   fine-tune the survivors on the high-fidelity/high-load ibmq_kolkata.
3. Compare quality, executions, and modelled time against the
   single-device baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Qoncord, VQAJob
from repro.noise import ibmq_kolkata, ibmq_toronto
from repro.vqa import MaxCutProblem, QAOAAnsatz


def main() -> None:
    problem = MaxCutProblem.random(num_nodes=7, edge_probability=0.5, seed=1)
    print(f"problem: {problem}, exact max cut = {problem.best_cut}")

    job = VQAJob(
        ansatz=QAOAAnsatz(problem.graph, layers=2),
        hamiltonian=problem.hamiltonian,
        ground_energy=problem.ground_energy,
        num_restarts=6,
        max_iterations_per_stage=40,
        name="quickstart",
    )
    devices = [ibmq_toronto(), ibmq_kolkata()]
    qoncord = Qoncord(seed=0, min_fidelity=0.01)

    result = qoncord.run(job, devices)
    ar = problem.approximation_ratio(result.best_energy)
    print(f"\ndevice hierarchy: {result.device_order}")
    print(f"estimated fidelities: "
          f"{ {k: round(v, 3) for k, v in result.device_fidelities.items()} }")
    print(f"survivors after filtering: "
          f"{len(result.surviving_restarts)}/{job.num_restarts}")
    print(f"best approximation ratio: {ar:.3f}")
    print(f"circuit executions per device: {result.circuits_per_device}")
    print(f"modelled time (hardware + queue): {result.total_seconds:,.0f} s")

    baseline = qoncord.run_single_device_baseline(job, ibmq_kolkata())
    ar_hf = problem.approximation_ratio(baseline.best.final_energy)
    print(f"\nHF-only baseline: AR={ar_hf:.3f}, "
          f"circuits={baseline.total_circuits}, "
          f"time={baseline.total_seconds:,.0f} s")
    print(f"Qoncord speedup: {baseline.total_seconds / result.total_seconds:.2f}x "
          f"at {ar - ar_hf:+.3f} AR difference")


if __name__ == "__main__":
    main()
