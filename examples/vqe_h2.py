"""VQE on molecular hydrogen with a UCCSD ansatz (paper Section VI-F).

Derives the 4-qubit Jordan–Wigner H2 Hamiltonian from STO-3G integrals,
builds the UCCSD circuit from exact fermionic excitation generators, and
trains it three ways: noise-free, HF-device-only, and Qoncord-scheduled
across the toronto/kolkata pair.  The chemistry yardstick: recover the
~20 mHa correlation energy below the Hartree–Fock reference.

Run:  python examples/vqe_h2.py
"""

import numpy as np

from repro.core import Qoncord, VQAJob
from repro.noise import ibmq_kolkata, ibmq_toronto
from repro.sim import StatevectorSimulator
from repro.vqa import (
    SPSA,
    UCCSDAnsatz,
    h2_correlation_energy,
    h2_ground_energy,
    h2_hamiltonian,
    h2_hartree_fock_energy,
)


def main() -> None:
    h = h2_hamiltonian()
    print(f"H2/STO-3G electronic Hamiltonian: {h.num_terms} Pauli terms")
    print(f"  Hartree-Fock energy : {h2_hartree_fock_energy():.6f} Ha")
    print(f"  FCI (exact) energy  : {h2_ground_energy():.6f} Ha")
    print(f"  correlation energy  : {h2_correlation_energy() * 1000:.2f} mHa")

    ansatz = UCCSDAnsatz(num_modes=4, num_particles=2)
    print(f"\nansatz: {ansatz}")
    print(f"  excitations: {ansatz.excitation_labels}")

    # Noise-free VQE from the HF point.
    sv = StatevectorSimulator()
    result = SPSA(seed=0).minimize(
        lambda x: sv.expectation(ansatz.bind(x), h),
        np.zeros(ansatz.num_parameters),
        maxiter=120,
    )
    print(f"\nnoise-free VQE: E = {result.fun:.6f} Ha "
          f"(error {abs(result.fun - h2_ground_energy()) * 1000:.3f} mHa)")

    # Qoncord-scheduled noisy VQE.
    job = VQAJob(
        ansatz=ansatz,
        hamiltonian=h,
        ground_energy=h2_ground_energy(),
        num_restarts=1,
        max_iterations_per_stage=60,
        name="vqe-h2",
    )
    qoncord = Qoncord(seed=0, min_fidelity=0.01, min_keep=1)
    hf_point = [np.zeros(ansatz.num_parameters)]
    baseline = qoncord.run_single_device_baseline(
        job, ibmq_kolkata(), initial_points=hf_point
    )
    scheduled = qoncord.run(
        job, [ibmq_toronto(), ibmq_kolkata()], initial_points=hf_point
    )
    print(f"\nHF-device-only : E = {baseline.best.final_energy:.6f} Ha, "
          f"circuits = {baseline.total_circuits}")
    print(f"Qoncord        : E = {scheduled.best_energy:.6f} Ha, "
          f"circuits = {scheduled.circuits_per_device}")
    gap = abs(scheduled.best_energy - baseline.best.final_energy)
    print(f"Qoncord is within {gap / abs(baseline.best.final_energy):.2%} "
          f"of the HF-only energy (paper: 0.3%)")


if __name__ == "__main__":
    main()
